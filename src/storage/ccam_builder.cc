#include "src/storage/ccam_builder.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/geo/hilbert.h"
#include "src/network/accessor.h"
#include "src/network/network_io.h"
#include "src/storage/bplus_tree.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/ccam_store.h"
#include "src/storage/slotted_page.h"
#include "src/util/check.h"

namespace capefp::storage {

namespace {

using network::NodeId;

// In-memory image of one data page during packing.
struct PendingPage {
  std::vector<int> nodes;   // Ordinal positions of records, in slot order.
  uint32_t used_bytes = 0;  // Record bytes (headers accounted separately).
};

constexpr uint32_t kSlottedOverheadPerRecord = 4;  // Slot directory entry.
constexpr uint32_t kSlottedHeaderBytes = 4;

}  // namespace

util::StatusOr<CcamBuildReport> BuildCcamFile(
    const network::RoadNetwork& net, const std::string& path,
    const CcamBuildOptions& options) {
  const size_t n = net.num_nodes();
  if (n == 0) return util::Status::InvalidArgument("empty network");
  // One full structural audit of the input before it is frozen into pages.
  CAPEFP_DCHECK_OK(net.ValidateInvariants());

  // --- Serialize all node records.
  std::vector<std::string> records(n);
  for (size_t i = 0; i < n; ++i) {
    NodeRecord record;
    const auto id = static_cast<NodeId>(i);
    record.location = net.location(id);
    for (network::EdgeId e : net.OutEdges(id)) {
      const network::Edge& edge = net.edge(e);
      record.edges.push_back(
          {edge.to, edge.distance_miles, edge.pattern, edge.road_class});
    }
    records[i] = EncodeNodeRecord(record);
    if (records[i].size() + kSlottedHeaderBytes + kSlottedOverheadPerRecord >
        options.page_size) {
      return util::Status::InvalidArgument(
          "node record exceeds page size; use a larger page");
    }
  }

  // --- Hilbert ordering.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options.spatial_ordering) {
    std::vector<uint64_t> hv(n);
    for (size_t i = 0; i < n; ++i) {
      hv[i] = geo::HilbertValue(net.location(static_cast<NodeId>(i)),
                                net.bounding_box(), options.hilbert_order);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&hv](int a, int b) { return hv[static_cast<size_t>(a)] <
                                                  hv[static_cast<size_t>(b)]; });
  }

  // --- Connectivity-clustered packing.
  const uint32_t capacity =
      options.page_size - kSlottedHeaderBytes;  // Records + slot entries.
  std::vector<PendingPage> pages;
  std::vector<int> page_of(n, -1);
  std::vector<std::vector<NodeId>> undirected(n);
  for (size_t e = 0; e < net.num_edges(); ++e) {
    const network::Edge& edge = net.edge(static_cast<network::EdgeId>(e));
    undirected[static_cast<size_t>(edge.from)].push_back(edge.to);
    undirected[static_cast<size_t>(edge.to)].push_back(edge.from);
  }

  int current_page = -1;
  for (int node : order) {
    const uint32_t need = static_cast<uint32_t>(
        records[static_cast<size_t>(node)].size() + kSlottedOverheadPerRecord);
    int best_page = -1;
    if (options.connectivity_clustering) {
      // Count placed neighbours per candidate page.
      std::unordered_map<int, int> votes;
      for (NodeId nb : undirected[static_cast<size_t>(node)]) {
        const int p = page_of[static_cast<size_t>(nb)];
        if (p >= 0) ++votes[p];
      }
      int best_votes = 0;
      for (const auto& [p, v] : votes) {
        if (pages[static_cast<size_t>(p)].used_bytes + need <= capacity &&
            (v > best_votes ||
             (v == best_votes && best_page >= 0 && p < best_page))) {
          best_votes = v;
          best_page = p;
        }
      }
    }
    if (best_page < 0) {
      if (current_page >= 0 &&
          pages[static_cast<size_t>(current_page)].used_bytes + need <=
              capacity) {
        best_page = current_page;
      } else {
        pages.push_back({});
        best_page = static_cast<int>(pages.size()) - 1;
        current_page = best_page;
      }
    }
    pages[static_cast<size_t>(best_page)].nodes.push_back(node);
    pages[static_cast<size_t>(best_page)].used_bytes += need;
    page_of[static_cast<size_t>(node)] = best_page;
  }

  // --- Write the file: pager, meta page, schema blob, data pages, B+-tree.
  auto pager_or = Pager::Create(path, options.page_size);
  if (!pager_or.ok()) return pager_or.status();
  std::unique_ptr<Pager> pager = std::move(*pager_or);
  // Build-time pool: generous, everything fits or spills transparently.
  BufferPool pool(pager.get(), 256);

  // Reserve the meta page (must be page 1).
  {
    auto meta_or = pool.AllocateAndAcquire();
    if (!meta_or.ok()) return meta_or.status();
    CAPEFP_CHECK_EQ(meta_or->page_id(), ccam_internal::kMetaPage);
  }

  // Schema blob.
  std::ostringstream schema;
  {
    std::vector<const tdf::CapeCodPattern*> pattern_ptrs;
    for (size_t p = 0; p < net.num_patterns(); ++p) {
      pattern_ptrs.push_back(&net.pattern(static_cast<network::PatternId>(p)));
    }
    network::WriteScheduleText(net.calendar(), pattern_ptrs, schema);
  }
  const std::string schema_blob = schema.str();
  auto schema_head_or =
      ccam_internal::WriteBlobChain(&pool, schema_blob);
  if (!schema_head_or.ok()) return schema_head_or.status();

  // Data pages.
  std::vector<uint64_t> locator(n, 0);
  uint32_t data_pages = 0;
  for (const PendingPage& pending : pages) {
    auto handle_or = pool.AllocateAndAcquire();
    if (!handle_or.ok()) return handle_or.status();
    SlottedPage sp(handle_or->mutable_data(), options.page_size);
    sp.Format();
    for (int node : pending.nodes) {
      const int slot = sp.AppendRecord(records[static_cast<size_t>(node)]);
      CAPEFP_CHECK_GE(slot, 0);
      locator[static_cast<size_t>(node)] =
          (static_cast<uint64_t>(handle_or->page_id()) << 32) |
          static_cast<uint16_t>(slot);
    }
    CAPEFP_DCHECK_OK(sp.ValidateInvariants());
    ++data_pages;
  }

  // Index.
  const uint32_t pages_before_index = pager->num_pages();
  BPlusTree tree(&pool, kInvalidPage);
  CAPEFP_RETURN_IF_ERROR(tree.Init());
  for (size_t i = 0; i < n; ++i) {
    CAPEFP_RETURN_IF_ERROR(tree.Put(i, locator[i]));
  }

  // Meta.
  ccam_internal::Meta meta;
  meta.num_nodes = static_cast<uint32_t>(n);
  meta.tree_root = tree.root();
  meta.schema_head = *schema_head_or;
  meta.schema_bytes = static_cast<uint32_t>(schema_blob.size());
  CAPEFP_RETURN_IF_ERROR(ccam_internal::WriteMeta(&pool, meta));
  CAPEFP_RETURN_IF_ERROR(pool.FlushAll());

  CcamBuildReport report;
  report.data_pages = data_pages;
  report.total_pages = pager->num_pages();
  report.index_pages = report.total_pages - pages_before_index;
  uint64_t intra = 0;
  for (size_t e = 0; e < net.num_edges(); ++e) {
    const network::Edge& edge = net.edge(static_cast<network::EdgeId>(e));
    if (page_of[static_cast<size_t>(edge.from)] ==
        page_of[static_cast<size_t>(edge.to)]) {
      ++intra;
    }
  }
  report.intra_page_edge_fraction =
      net.num_edges() == 0
          ? 0.0
          : static_cast<double>(intra) / static_cast<double>(net.num_edges());
  return report;
}

}  // namespace capefp::storage
