#include "src/storage/bplus_tree.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "src/util/check.h"

namespace capefp::storage {

namespace {

constexpr uint8_t kLeaf = 1;
constexpr uint8_t kInternal = 2;

constexpr size_t kTypeOff = 0;
constexpr size_t kCountOff = 2;
constexpr size_t kNextOff = 4;  // Leaf: next leaf. Internal: rightmost child.
constexpr size_t kEntriesOff = 8;

constexpr size_t kLeafStride = 16;      // key u64 + value u64.
constexpr size_t kInternalStride = 12;  // key u64 + child u32.

template <typename T>
T Load(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void Store(char* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

uint8_t NodeType(const char* page) { return Load<uint8_t>(page + kTypeOff); }
uint16_t Count(const char* page) { return Load<uint16_t>(page + kCountOff); }
uint32_t Next(const char* page) { return Load<uint32_t>(page + kNextOff); }

void SetType(char* page, uint8_t t) { Store<uint8_t>(page + kTypeOff, t); }
void SetCount(char* page, uint16_t c) { Store<uint16_t>(page + kCountOff, c); }
void SetNext(char* page, uint32_t n) { Store<uint32_t>(page + kNextOff, n); }

uint64_t LeafKey(const char* page, size_t i) {
  return Load<uint64_t>(page + kEntriesOff + i * kLeafStride);
}
uint64_t LeafValue(const char* page, size_t i) {
  return Load<uint64_t>(page + kEntriesOff + i * kLeafStride + 8);
}
void SetLeafEntry(char* page, size_t i, uint64_t key, uint64_t value) {
  Store<uint64_t>(page + kEntriesOff + i * kLeafStride, key);
  Store<uint64_t>(page + kEntriesOff + i * kLeafStride + 8, value);
}

uint64_t InternalKey(const char* page, size_t i) {
  return Load<uint64_t>(page + kEntriesOff + i * kInternalStride);
}
uint32_t InternalChild(const char* page, size_t i) {
  return Load<uint32_t>(page + kEntriesOff + i * kInternalStride + 8);
}
void SetInternalEntry(char* page, size_t i, uint64_t key, uint32_t child) {
  Store<uint64_t>(page + kEntriesOff + i * kInternalStride, key);
  Store<uint32_t>(page + kEntriesOff + i * kInternalStride + 8, child);
}

// Index of the first leaf slot with key >= `key` (binary search).
size_t LeafLowerBound(const char* page, uint64_t key) {
  size_t lo = 0;
  size_t hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Node-local structural audit used by the mutation-site DCHECKs: node type
// known, entry count within the fanout bound, keys strictly increasing.
// O(entries in one node) — cheap enough to run after every Put/Delete.
util::Status ValidateNodePage(const char* page, uint32_t leaf_capacity,
                              uint32_t internal_capacity) {
  char buf[256];
  const uint8_t type = NodeType(page);
  if (type != kLeaf && type != kInternal) {
    std::snprintf(buf, sizeof(buf), "b+tree node: unknown type %u", type);
    return util::Status::Corruption(buf);
  }
  const size_t n = Count(page);
  const uint32_t capacity = type == kLeaf ? leaf_capacity : internal_capacity;
  if (n > capacity) {
    std::snprintf(buf, sizeof(buf),
                  "b+tree node: %zu entries exceed fanout bound %u", n,
                  capacity);
    return util::Status::Corruption(buf);
  }
  for (size_t i = 1; i < n; ++i) {
    const uint64_t prev =
        type == kLeaf ? LeafKey(page, i - 1) : InternalKey(page, i - 1);
    const uint64_t cur = type == kLeaf ? LeafKey(page, i) : InternalKey(page, i);
    if (cur <= prev) {
      std::snprintf(buf, sizeof(buf),
                    "b+tree node: keys not strictly increasing at entry %zu "
                    "(%llu then %llu)",
                    i, static_cast<unsigned long long>(prev),
                    static_cast<unsigned long long>(cur));
      return util::Status::Corruption(buf);
    }
  }
  return util::Status::Ok();
}

// Child to descend into: first entry with key <= separator, else rightmost.
uint32_t DescendChild(const char* page, uint64_t key, size_t* index_out) {
  const size_t n = Count(page);
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (InternalKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (index_out != nullptr) *index_out = lo;
  return lo < n ? InternalChild(page, lo) : Next(page);
}

}  // namespace

BPlusTree::BPlusTree(BufferPool* pool, PageId root)
    : pool_(pool), root_(root) {
  CAPEFP_CHECK(pool != nullptr);
}

uint32_t BPlusTree::LeafCapacity() const {
  return static_cast<uint32_t>((pool_->page_size() - kEntriesOff) /
                               kLeafStride);
}

uint32_t BPlusTree::InternalCapacity() const {
  return static_cast<uint32_t>((pool_->page_size() - kEntriesOff) /
                               kInternalStride);
}

util::Status BPlusTree::Init() {
  if (root_ != kInvalidPage) {
    return util::Status::Internal("tree already initialized");
  }
  auto handle_or = pool_->AllocateAndAcquire();
  if (!handle_or.ok()) return handle_or.status();
  char* page = handle_or->mutable_data();
  SetType(page, kLeaf);
  SetCount(page, 0);
  SetNext(page, kInvalidPage);
  root_ = handle_or->page_id();
  return util::Status::Ok();
}

util::StatusOr<uint64_t> BPlusTree::Get(uint64_t key) {
  if (root_ == kInvalidPage) return util::Status::NotFound("empty tree");
  PageId page_id = root_;
  for (;;) {
    auto handle_or = pool_->Acquire(page_id);
    if (!handle_or.ok()) return handle_or.status();
    const char* page = handle_or->data();
    if (NodeType(page) == kInternal) {
      page_id = DescendChild(page, key, nullptr);
      continue;
    }
    const size_t slot = LeafLowerBound(page, key);
    if (slot < Count(page) && LeafKey(page, slot) == key) {
      return LeafValue(page, slot);
    }
    return util::Status::NotFound("key not in tree");
  }
}

util::StatusOr<BPlusTree::SplitResult> BPlusTree::PutRec(PageId page_id,
                                                         uint64_t key,
                                                         uint64_t value) {
  auto handle_or = pool_->Acquire(page_id);
  if (!handle_or.ok()) return handle_or.status();
  PageHandle handle = std::move(*handle_or);

  if (NodeType(handle.data()) == kLeaf) {
    char* page = handle.mutable_data();
    const size_t n = Count(page);
    const size_t slot = LeafLowerBound(page, key);
    if (slot < n && LeafKey(page, slot) == key) {
      SetLeafEntry(page, slot, key, value);  // Overwrite.
      return SplitResult{};
    }
    if (n < LeafCapacity()) {
      std::memmove(page + kEntriesOff + (slot + 1) * kLeafStride,
                   page + kEntriesOff + slot * kLeafStride,
                   (n - slot) * kLeafStride);
      SetLeafEntry(page, slot, key, value);
      SetCount(page, static_cast<uint16_t>(n + 1));
      CAPEFP_DCHECK_OK(
          ValidateNodePage(page, LeafCapacity(), InternalCapacity()));
      return SplitResult{};
    }
    // Split: collect entries (plus the new one), give the upper half to a
    // fresh right sibling.
    std::vector<std::pair<uint64_t, uint64_t>> entries;
    entries.reserve(n + 1);
    for (size_t i = 0; i < n; ++i) {
      entries.emplace_back(LeafKey(page, i), LeafValue(page, i));
    }
    entries.insert(entries.begin() + static_cast<ptrdiff_t>(slot),
                   {key, value});
    const size_t mid = entries.size() / 2;

    auto right_or = pool_->AllocateAndAcquire();
    if (!right_or.ok()) return right_or.status();
    char* right = right_or->mutable_data();
    SetType(right, kLeaf);
    SetCount(right, static_cast<uint16_t>(entries.size() - mid));
    SetNext(right, Next(page));
    for (size_t i = mid; i < entries.size(); ++i) {
      SetLeafEntry(right, i - mid, entries[i].first, entries[i].second);
    }
    SetCount(page, static_cast<uint16_t>(mid));
    for (size_t i = 0; i < mid; ++i) {
      SetLeafEntry(page, i, entries[i].first, entries[i].second);
    }
    SetNext(page, right_or->page_id());
    CAPEFP_DCHECK_OK(
        ValidateNodePage(page, LeafCapacity(), InternalCapacity()));
    CAPEFP_DCHECK_OK(
        ValidateNodePage(right, LeafCapacity(), InternalCapacity()));
    return SplitResult{true, entries[mid - 1].first, right_or->page_id()};
  }

  // Internal node.
  size_t child_index = 0;
  const PageId child = DescendChild(handle.data(), key, &child_index);
  // Recursing may evict this page; re-acquire after.
  handle.Release();
  auto split_or = PutRec(child, key, value);
  if (!split_or.ok()) return split_or.status();
  if (!split_or->split) return SplitResult{};

  auto re_or = pool_->Acquire(page_id);
  if (!re_or.ok()) return re_or.status();
  PageHandle re = std::move(*re_or);
  char* page = re.mutable_data();
  const size_t n = Count(page);

  // The split child keeps the keys <= separator; the new right sibling takes
  // the rest. Rewire entries accordingly.
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  entries.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    entries.emplace_back(InternalKey(page, i), InternalChild(page, i));
  }
  uint32_t rightmost = Next(page);
  if (child_index < n) {
    entries.insert(entries.begin() + static_cast<ptrdiff_t>(child_index),
                   {split_or->separator, child});
    entries[child_index + 1].second = split_or->right;
  } else {
    entries.emplace_back(split_or->separator, child);
    rightmost = split_or->right;
  }

  if (entries.size() <= InternalCapacity()) {
    SetCount(page, static_cast<uint16_t>(entries.size()));
    for (size_t i = 0; i < entries.size(); ++i) {
      SetInternalEntry(page, i, entries[i].first, entries[i].second);
    }
    SetNext(page, rightmost);
    CAPEFP_DCHECK_OK(
        ValidateNodePage(page, LeafCapacity(), InternalCapacity()));
    return SplitResult{};
  }

  // Split this internal node; entries[mid].key is promoted.
  const size_t mid = entries.size() / 2;
  auto right_or = pool_->AllocateAndAcquire();
  if (!right_or.ok()) return right_or.status();
  char* right = right_or->mutable_data();
  SetType(right, kInternal);
  const size_t right_count = entries.size() - mid - 1;
  SetCount(right, static_cast<uint16_t>(right_count));
  for (size_t i = mid + 1; i < entries.size(); ++i) {
    SetInternalEntry(right, i - mid - 1, entries[i].first, entries[i].second);
  }
  SetNext(right, rightmost);

  SetCount(page, static_cast<uint16_t>(mid));
  for (size_t i = 0; i < mid; ++i) {
    SetInternalEntry(page, i, entries[i].first, entries[i].second);
  }
  SetNext(page, entries[mid].second);
  CAPEFP_DCHECK_OK(ValidateNodePage(page, LeafCapacity(), InternalCapacity()));
  CAPEFP_DCHECK_OK(ValidateNodePage(right, LeafCapacity(), InternalCapacity()));
  return SplitResult{true, entries[mid].first, right_or->page_id()};
}

util::Status BPlusTree::Put(uint64_t key, uint64_t value) {
  if (root_ == kInvalidPage) {
    return util::Status::Internal("tree not initialized");
  }
  auto split_or = PutRec(root_, key, value);
  if (!split_or.ok()) return split_or.status();
  if (!split_or->split) return util::Status::Ok();
  // Grow a new root.
  auto root_or = pool_->AllocateAndAcquire();
  if (!root_or.ok()) return root_or.status();
  char* page = root_or->mutable_data();
  SetType(page, kInternal);
  SetCount(page, 1);
  SetInternalEntry(page, 0, split_or->separator, root_);
  SetNext(page, split_or->right);
  root_ = root_or->page_id();
  return util::Status::Ok();
}

util::Status BPlusTree::Delete(uint64_t key) {
  if (root_ == kInvalidPage) return util::Status::NotFound("empty tree");
  PageId page_id = root_;
  for (;;) {
    auto handle_or = pool_->Acquire(page_id);
    if (!handle_or.ok()) return handle_or.status();
    PageHandle handle = std::move(*handle_or);
    if (NodeType(handle.data()) == kInternal) {
      page_id = DescendChild(handle.data(), key, nullptr);
      continue;
    }
    char* page = handle.mutable_data();
    const size_t n = Count(page);
    const size_t slot = LeafLowerBound(page, key);
    if (slot >= n || LeafKey(page, slot) != key) {
      return util::Status::NotFound("key not in tree");
    }
    std::memmove(page + kEntriesOff + slot * kLeafStride,
                 page + kEntriesOff + (slot + 1) * kLeafStride,
                 (n - slot - 1) * kLeafStride);
    SetCount(page, static_cast<uint16_t>(n - 1));
    CAPEFP_DCHECK_OK(
        ValidateNodePage(page, LeafCapacity(), InternalCapacity()));
    return util::Status::Ok();
  }
}

util::Status BPlusTree::Scan(
    uint64_t lo, uint64_t hi,
    std::vector<std::pair<uint64_t, uint64_t>>* out) {
  if (root_ == kInvalidPage) return util::Status::Ok();
  PageId page_id = root_;
  for (;;) {
    auto handle_or = pool_->Acquire(page_id);
    if (!handle_or.ok()) return handle_or.status();
    if (NodeType(handle_or->data()) == kLeaf) break;
    page_id = DescendChild(handle_or->data(), lo, nullptr);
  }
  while (page_id != kInvalidPage) {
    auto handle_or = pool_->Acquire(page_id);
    if (!handle_or.ok()) return handle_or.status();
    const char* page = handle_or->data();
    const size_t n = Count(page);
    for (size_t i = LeafLowerBound(page, lo); i < n; ++i) {
      const uint64_t key = LeafKey(page, i);
      if (key > hi) return util::Status::Ok();
      out->emplace_back(key, LeafValue(page, i));
    }
    page_id = Next(page);
  }
  return util::Status::Ok();
}

util::StatusOr<uint64_t> BPlusTree::CountEntries() {
  std::vector<std::pair<uint64_t, uint64_t>> all;
  CAPEFP_RETURN_IF_ERROR(Scan(0, ~0ull, &all));
  return static_cast<uint64_t>(all.size());
}

util::StatusOr<int> BPlusTree::Height() {
  if (root_ == kInvalidPage) return 0;
  int height = 1;
  PageId page_id = root_;
  for (;;) {
    auto handle_or = pool_->Acquire(page_id);
    if (!handle_or.ok()) return handle_or.status();
    if (NodeType(handle_or->data()) == kLeaf) return height;
    page_id = InternalChild(handle_or->data(), 0);
    ++height;
  }
}

util::Status BPlusTree::ValidateRec(PageId page_id, uint64_t lo, uint64_t hi,
                                    int depth, int* leaf_depth,
                                    PageId* prev_leaf,
                                    std::vector<PageId>* visited_pages) {
  auto handle_or = pool_->Acquire(page_id);
  if (!handle_or.ok()) return handle_or.status();
  if (visited_pages != nullptr) visited_pages->push_back(page_id);
  PageHandle handle = std::move(*handle_or);
  const char* page = handle.data();
  const size_t n = Count(page);
  CAPEFP_RETURN_IF_ERROR(
      ValidateNodePage(page, LeafCapacity(), InternalCapacity()));

  if (NodeType(page) == kLeaf) {
    if (*leaf_depth < 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return util::Status::Corruption("leaves at differing depths");
    }
    uint64_t prev = lo;
    bool first = true;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = LeafKey(page, i);
      if (!first && key <= prev) {
        return util::Status::Corruption("leaf keys not strictly increasing");
      }
      if (key < lo || key > hi) {
        return util::Status::Corruption("leaf key outside separator range");
      }
      prev = key;
      first = false;
    }
    // Left-to-right traversal must match the leaf chain.
    if (*prev_leaf != kInvalidPage) {
      auto prev_or = pool_->Acquire(*prev_leaf);
      if (!prev_or.ok()) return prev_or.status();
      if (Next(prev_or->data()) != page_id) {
        return util::Status::Corruption("broken leaf chain");
      }
    }
    *prev_leaf = page_id;
    return util::Status::Ok();
  }

  if (NodeType(page) != kInternal) {
    return util::Status::Corruption("unknown node type");
  }
  if (n == 0) return util::Status::Corruption("empty internal node");
  uint64_t child_lo = lo;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t sep = InternalKey(page, i);
    if (sep < child_lo || sep > hi) {
      return util::Status::Corruption("separator out of range");
    }
    const PageId child = InternalChild(page, i);
    // Copy what we need, then release before recursing (pin budget).
    handle.Release();
    CAPEFP_RETURN_IF_ERROR(ValidateRec(child, child_lo, sep, depth + 1,
                                       leaf_depth, prev_leaf, visited_pages));
    auto re_or = pool_->Acquire(page_id);
    if (!re_or.ok()) return re_or.status();
    handle = std::move(*re_or);
    page = handle.data();
    child_lo = sep == ~0ull ? sep : sep + 1;
  }
  const PageId rightmost = Next(page);
  handle.Release();
  return ValidateRec(rightmost, child_lo, hi, depth + 1, leaf_depth,
                     prev_leaf, visited_pages);
}

util::Status BPlusTree::ValidateInvariants(std::vector<PageId>* visited_pages) {
  if (root_ == kInvalidPage) return util::Status::Ok();
  int leaf_depth = -1;
  PageId prev_leaf = kInvalidPage;
  return ValidateRec(root_, 0, ~0ull, 0, &leaf_depth, &prev_leaf,
                     visited_pages);
}

}  // namespace capefp::storage
