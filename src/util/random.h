// Deterministic pseudo-random number generation.
//
// All stochastic components of capefp (network generation, workload
// sampling, property tests) draw from Rng so that every experiment is
// reproducible from a seed printed in its output.
#ifndef CAPEFP_UTIL_RANDOM_H_
#define CAPEFP_UTIL_RANDOM_H_

#include <cstdint>

namespace capefp::util {

// SplitMix64-seeded xoshiro256** generator. Not cryptographic; chosen for
// speed, tiny state, and well-understood statistical quality.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform random 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  // Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace capefp::util

#endif  // CAPEFP_UTIL_RANDOM_H_
