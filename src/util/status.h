// Minimal Status / StatusOr error-propagation types.
//
// capefp does not use exceptions (see DESIGN.md). Recoverable failures —
// chiefly file I/O and malformed input — are reported through Status, and
// value-or-error results through StatusOr<T>. Programming errors abort via
// CAPEFP_CHECK instead.
#ifndef CAPEFP_UTIL_STATUS_H_
#define CAPEFP_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace capefp::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
};

// Human-readable name of `code`, e.g. "IO_ERROR".
const char* StatusCodeName(StatusCode code);

// An error code plus message. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CAPEFP_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CAPEFP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    CAPEFP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CAPEFP_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace capefp::util

// Propagates a non-OK Status to the caller.
#define CAPEFP_RETURN_IF_ERROR(expr)               \
  do {                                             \
    ::capefp::util::Status capefp_status_ = (expr); \
    if (!capefp_status_.ok()) return capefp_status_; \
  } while (false)

// Aborts with the status message unless the Status-returning expression is
// OK. Use for invariants whose violation descriptions live in a validator
// (e.g. ValidateInvariants()) rather than at the call site.
#define CAPEFP_CHECK_OK(expr)                                          \
  do {                                                                 \
    const ::capefp::util::Status capefp_check_status_ = (expr);        \
    CAPEFP_CHECK(capefp_check_status_.ok())                            \
        << #expr << " returned " << capefp_check_status_.ToString();   \
  } while (false)

// Debug-only form: the expression is NOT evaluated under NDEBUG, so
// arbitrarily expensive audits (full-structure validation sweeps) can sit
// on hot mutation paths and cost nothing in release builds.
#ifdef NDEBUG
#define CAPEFP_DCHECK_OK(expr) \
  do {                         \
  } while (false)
#else
#define CAPEFP_DCHECK_OK(expr) CAPEFP_CHECK_OK(expr)
#endif

#endif  // CAPEFP_UTIL_STATUS_H_
