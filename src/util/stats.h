// Small statistics and timing helpers used by tests and benchmarks.
#ifndef CAPEFP_UTIL_STATS_H_
#define CAPEFP_UTIL_STATS_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace capefp::util {

// Accumulates scalar samples and reports summary statistics.
//
// Empty-summary contract: every accessor is safe to call with no samples
// and returns 0.0 (and ToString() returns "n=0"); check count() when 0 is
// a meaningful sample value.
class Summary {
 public:
  void Add(double sample);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  // Linear-interpolated percentile, `p` in [0, 100]; 0.0 when empty.
  double percentile(double p) const;

  // One-line summary: "n=.. mean=.. min=.. p50=.. p95=.. max=..".
  std::string ToString() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

// Wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace capefp::util

#endif  // CAPEFP_UTIL_STATS_H_
