// Lightweight assertion macros used across capefp.
//
// CHECK-style macros abort the process with a diagnostic; they guard
// programming errors (violated preconditions and invariants), not
// recoverable runtime conditions, which use util::Status instead.
//
// CAPEFP_DCHECK* variants compile to nothing under NDEBUG (release
// builds); they carry the expensive structural invariant audits — e.g.
// the ValidateInvariants() sweeps at mutation sites — that debug and
// sanitizer builds run on every operation. See DESIGN.md, "Invariant
// auditing".
#ifndef CAPEFP_UTIL_CHECK_H_
#define CAPEFP_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace capefp::util {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr,
                                   const std::string& msg) noexcept {
  // The abort path must reach a human even when no Status channel exists;
  // this is the one sanctioned stderr write in library code.
  std::fprintf(  // capefp-lint: allow(io-in-src)
      stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
      msg.empty() ? "" : " - ", msg.c_str());
  std::abort();
}

namespace internal {

// Accumulates an optional streamed message and aborts on destruction.
// Instantiated only on the failure path of CAPEFP_CHECK.
class CheckFailer {
 public:
  CheckFailer(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  // The destructor never returns, and no exception may escape it: the
  // message extraction is fenced so that an allocation failure degrades to
  // the bare expression text instead of std::terminate via a throwing
  // (implicitly noexcept) destructor.
  [[noreturn]] ~CheckFailer() {
    std::string msg;
    try {
      msg = stream_.str();
    } catch (...) {
      msg.clear();
    }
    CheckFail(file_, line_, expr_, msg);
  }

  CheckFailer(const CheckFailer&) = delete;
  CheckFailer& operator=(const CheckFailer&) = delete;

  template <typename T>
  CheckFailer& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace capefp::util

#define CAPEFP_CHECK(expr)    \
  if (static_cast<bool>(expr)) {} else /* NOLINT */ \
    ::capefp::util::internal::CheckFailer(__FILE__, __LINE__, #expr)

#define CAPEFP_CHECK_EQ(a, b) CAPEFP_CHECK((a) == (b))
#define CAPEFP_CHECK_NE(a, b) CAPEFP_CHECK((a) != (b))
#define CAPEFP_CHECK_LT(a, b) CAPEFP_CHECK((a) < (b))
#define CAPEFP_CHECK_LE(a, b) CAPEFP_CHECK((a) <= (b))
#define CAPEFP_CHECK_GT(a, b) CAPEFP_CHECK((a) > (b))
#define CAPEFP_CHECK_GE(a, b) CAPEFP_CHECK((a) >= (b))

// CAPEFP_CHECK_OK / CAPEFP_DCHECK_OK live in util/status.h (they need the
// Status type, which itself builds on this header).

#ifdef NDEBUG
#define CAPEFP_DCHECK(expr) \
  while (false) CAPEFP_CHECK(expr)
#else
#define CAPEFP_DCHECK(expr) CAPEFP_CHECK(expr)
#endif

#define CAPEFP_DCHECK_EQ(a, b) CAPEFP_DCHECK((a) == (b))
#define CAPEFP_DCHECK_NE(a, b) CAPEFP_DCHECK((a) != (b))
#define CAPEFP_DCHECK_LT(a, b) CAPEFP_DCHECK((a) < (b))
#define CAPEFP_DCHECK_LE(a, b) CAPEFP_DCHECK((a) <= (b))
#define CAPEFP_DCHECK_GT(a, b) CAPEFP_DCHECK((a) > (b))
#define CAPEFP_DCHECK_GE(a, b) CAPEFP_DCHECK((a) >= (b))

#endif  // CAPEFP_UTIL_CHECK_H_
