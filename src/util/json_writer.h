// Streaming JSON writer: handles commas, nesting, and string escaping with
// no dependency beyond the standard library. Originally private to the
// bench binaries; promoted to util so library code (the observability
// subsystem's metric and trace exposition) can emit JSON too. Usage:
//   JsonWriter w;
//   w.BeginObject(); w.Key("qps"); w.Double(123.4); w.EndObject();
//   use w.str();
// Keys/values must alternate correctly inside objects; the writer CHECKs
// balanced Begin/End but not key placement.
#ifndef CAPEFP_UTIL_JSON_WRITER_H_
#define CAPEFP_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace capefp::util {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& name);
  void String(const std::string& value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);

  // The finished document; CHECKs that all scopes are closed.
  const std::string& str() const;

 private:
  void BeforeValue();
  void Indent();

  std::string out_;
  // One entry per open scope: the count of items emitted in it.
  std::vector<int> scope_items_;
  bool pending_key_ = false;
};

}  // namespace capefp::util

#endif  // CAPEFP_UTIL_JSON_WRITER_H_
