#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace capefp::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CAPEFP_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CAPEFP_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_gaussian_ = true;
  return u * factor;
}

}  // namespace capefp::util
