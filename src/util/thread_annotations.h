// Portable Clang Thread Safety Analysis annotations.
//
// These macros turn the repo's lock-discipline comments ("guarded by mu_",
// "lock order is pool -> pager") into compiler-checked facts: under Clang
// with -Wthread-safety (CMake option CAPEFP_THREAD_SAFETY, preset
// `thread-safety`), reading a CAPEFP_GUARDED_BY member without holding its
// mutex — or acquiring locks against a CAPEFP_ACQUIRED_BEFORE order — is a
// compile error. On compilers without the attribute (GCC) every macro
// expands to nothing, so the annotated code builds everywhere.
//
// The vocabulary mirrors the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the
// subset the codebase uses is defined. Annotate with the CAPEFP_ macros,
// never the raw attributes, and take locks through util::Mutex /
// util::MutexLock (src/util/mutex.h) — the repo lint
// (tools/capefp_lint.py, rule mutex-outside-util) rejects naked std::mutex
// outside src/util precisely so that every lock is visible to this
// analysis.
#ifndef CAPEFP_UTIL_THREAD_ANNOTATIONS_H_
#define CAPEFP_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// On a data member: may only be read or written while holding `x`.
#define CAPEFP_GUARDED_BY(x) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// On a pointer member: the *pointee* is protected by `x` (the pointer
// itself is not).
#define CAPEFP_PT_GUARDED_BY(x) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// On a function: the caller must hold the listed capabilities. This is how
// the private `*Locked()` helpers declare their contract.
#define CAPEFP_REQUIRES(...) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the listed capabilities.
#define CAPEFP_ACQUIRE(...) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define CAPEFP_RELEASE(...) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define CAPEFP_TRY_ACQUIRE(...) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the listed capabilities
// (non-reentrancy; documents self-deadlock hazards).
#define CAPEFP_EXCLUDES(...) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// On a mutex member: whenever both are held, this one is acquired before
// (resp. after) the listed mutexes. Violations are diagnosed under
// -Wthread-safety-beta, which CAPEFP_THREAD_SAFETY enables; the repo's one
// cross-component order, BufferPool::mu_ -> Pager::mu_, is encoded with
// these (see src/storage/buffer_pool.h and DESIGN.md §6).
#define CAPEFP_ACQUIRED_BEFORE(...) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define CAPEFP_ACQUIRED_AFTER(...) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

// On a class: instances are capabilities (lockable objects).
#define CAPEFP_CAPABILITY(x) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// On a class: RAII object that acquires a capability in its constructor
// and releases it in its destructor (util::MutexLock).
#define CAPEFP_SCOPED_CAPABILITY \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// On a function returning a reference to a mutex, so wrappers can expose
// the capability they forward to.
#define CAPEFP_RETURN_CAPABILITY(x) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// On a function: asserts (at analysis time, not runtime) that the
// capability is held — for callbacks invoked only under a documented lock.
#define CAPEFP_ASSERT_CAPABILITY(x) \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

// Escape hatch: disables the analysis for one function. Every use must
// carry a comment explaining why the unchecked access is sound; the only
// sanctioned pattern today is BufferPool's pin-protected lock-free
// PageHandle::data() path (see buffer_pool.h's class comment).
#define CAPEFP_NO_THREAD_SAFETY_ANALYSIS \
  CAPEFP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CAPEFP_UTIL_THREAD_ANNOTATIONS_H_
