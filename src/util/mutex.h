// Capability-annotated mutex wrappers.
//
// util::Mutex is std::mutex dressed as a Clang Thread Safety *capability*:
// members declared CAPEFP_GUARDED_BY(mu_) can only be touched while the
// compiler can prove mu_ is held, and functions can state their locking
// contract (CAPEFP_REQUIRES / CAPEFP_EXCLUDES) in the signature. On
// non-Clang compilers the annotations vanish and this is a zero-cost
// veneer over std::mutex.
//
// All of src/ locks through these types: the repo lint
// (tools/capefp_lint.py, rule mutex-outside-util) rejects naked
// std::mutex / std::lock_guard outside src/util, because a lock the
// analysis cannot see is a lock it cannot check.
#ifndef CAPEFP_UTIL_MUTEX_H_
#define CAPEFP_UTIL_MUTEX_H_

#include <mutex>

#include "src/util/thread_annotations.h"

namespace capefp::util {

// A standard mutex, visible to thread-safety analysis. Prefer MutexLock
// over manual Lock()/Unlock() pairs.
class CAPEFP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CAPEFP_ACQUIRE() { mu_.lock(); }
  void Unlock() CAPEFP_RELEASE() { mu_.unlock(); }
  bool TryLock() CAPEFP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock, the std::lock_guard of this vocabulary. Scoped-capability
// semantics: the analysis treats the guarded region as exactly the
// lexical lifetime of the MutexLock.
class CAPEFP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CAPEFP_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CAPEFP_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace capefp::util

#endif  // CAPEFP_UTIL_MUTEX_H_
