#include "src/util/json_writer.h"

#include <cstdio>

#include "src/util/check.h"

namespace capefp::util {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": was just emitted; the value follows inline.
  }
  if (!scope_items_.empty()) {
    if (scope_items_.back() > 0) out_ += ',';
    ++scope_items_.back();
    out_ += '\n';
    Indent();
  }
}

void JsonWriter::Indent() {
  out_.append(2 * scope_items_.size(), ' ');
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scope_items_.push_back(0);
}

void JsonWriter::EndObject() {
  CAPEFP_CHECK(!scope_items_.empty());
  const int items = scope_items_.back();
  scope_items_.pop_back();
  if (items > 0) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scope_items_.push_back(0);
}

void JsonWriter::EndArray() {
  CAPEFP_CHECK(!scope_items_.empty());
  const int items = scope_items_.back();
  scope_items_.pop_back();
  if (items > 0) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

void JsonWriter::Key(const std::string& name) {
  CAPEFP_CHECK(!pending_key_);
  BeforeValue();
  AppendEscaped(&out_, name);
  out_ += ": ";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  AppendEscaped(&out_, value);
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  char buf[64];
  // %.17g round-trips; trim to something readable but lossless enough for
  // latencies and rates.
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

const std::string& JsonWriter::str() const {
  CAPEFP_CHECK(scope_items_.empty()) << "unclosed JSON scope";
  CAPEFP_CHECK(!pending_key_) << "dangling JSON key";
  return out_;
}

}  // namespace capefp::util
