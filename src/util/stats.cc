#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace capefp::util {

void Summary::Add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const { return percentile(0.0); }

double Summary::max() const { return percentile(100.0); }

double Summary::stddev() const {
  if (samples_.empty()) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Summary::percentile(double p) const {
  CAPEFP_CHECK(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Summary::ToString() const {
  if (samples_.empty()) return "n=0";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
                count(), mean(), min(), percentile(50.0), percentile(95.0),
                max());
  return buf;
}

}  // namespace capefp::util
