// CRC-32C (Castagnoli) checksum, used to guard every disk page.
#ifndef CAPEFP_UTIL_CRC32_H_
#define CAPEFP_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace capefp::util {

// CRC-32C of `data[0..len)`. `seed` allows incremental computation: pass a
// previous result to continue it.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace capefp::util

#endif  // CAPEFP_UTIL_CRC32_H_
