# Empty dependencies file for capefp_cli.
# This may be replaced when dependencies are built.
