file(REMOVE_RECURSE
  "CMakeFiles/capefp_cli.dir/capefp_cli.cc.o"
  "CMakeFiles/capefp_cli.dir/capefp_cli.cc.o.d"
  "capefp_cli"
  "capefp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capefp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
