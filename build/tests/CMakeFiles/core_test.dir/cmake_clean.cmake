file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/analysis_test.cc.o"
  "CMakeFiles/core_test.dir/core/analysis_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/constant_speed_solver_test.cc.o"
  "CMakeFiles/core_test.dir/core/constant_speed_solver_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/discrete_solver_test.cc.o"
  "CMakeFiles/core_test.dir/core/discrete_solver_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/engine_test.cc.o"
  "CMakeFiles/core_test.dir/core/engine_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/estimator_test.cc.o"
  "CMakeFiles/core_test.dir/core/estimator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hierarchical_test.cc.o"
  "CMakeFiles/core_test.dir/core/hierarchical_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/lower_border_test.cc.o"
  "CMakeFiles/core_test.dir/core/lower_border_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/paper_example_test.cc.o"
  "CMakeFiles/core_test.dir/core/paper_example_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/profile_envelope_test.cc.o"
  "CMakeFiles/core_test.dir/core/profile_envelope_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/profile_search_test.cc.o"
  "CMakeFiles/core_test.dir/core/profile_search_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/reverse_profile_search_test.cc.o"
  "CMakeFiles/core_test.dir/core/reverse_profile_search_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/td_astar_test.cc.o"
  "CMakeFiles/core_test.dir/core/td_astar_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
