
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analysis_test.cc" "tests/CMakeFiles/core_test.dir/core/analysis_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/analysis_test.cc.o.d"
  "/root/repo/tests/core/constant_speed_solver_test.cc" "tests/CMakeFiles/core_test.dir/core/constant_speed_solver_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/constant_speed_solver_test.cc.o.d"
  "/root/repo/tests/core/discrete_solver_test.cc" "tests/CMakeFiles/core_test.dir/core/discrete_solver_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/discrete_solver_test.cc.o.d"
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/core_test.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/core/estimator_test.cc" "tests/CMakeFiles/core_test.dir/core/estimator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/estimator_test.cc.o.d"
  "/root/repo/tests/core/hierarchical_test.cc" "tests/CMakeFiles/core_test.dir/core/hierarchical_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hierarchical_test.cc.o.d"
  "/root/repo/tests/core/lower_border_test.cc" "tests/CMakeFiles/core_test.dir/core/lower_border_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/lower_border_test.cc.o.d"
  "/root/repo/tests/core/paper_example_test.cc" "tests/CMakeFiles/core_test.dir/core/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/paper_example_test.cc.o.d"
  "/root/repo/tests/core/profile_envelope_test.cc" "tests/CMakeFiles/core_test.dir/core/profile_envelope_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/profile_envelope_test.cc.o.d"
  "/root/repo/tests/core/profile_search_test.cc" "tests/CMakeFiles/core_test.dir/core/profile_search_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/profile_search_test.cc.o.d"
  "/root/repo/tests/core/reverse_profile_search_test.cc" "tests/CMakeFiles/core_test.dir/core/reverse_profile_search_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/reverse_profile_search_test.cc.o.d"
  "/root/repo/tests/core/td_astar_test.cc" "tests/CMakeFiles/core_test.dir/core/td_astar_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/td_astar_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capefp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
