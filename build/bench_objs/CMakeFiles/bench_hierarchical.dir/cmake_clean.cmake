file(REMOVE_RECURSE
  "../bench/bench_hierarchical"
  "../bench/bench_hierarchical.pdb"
  "CMakeFiles/bench_hierarchical.dir/bench_hierarchical.cc.o"
  "CMakeFiles/bench_hierarchical.dir/bench_hierarchical.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
