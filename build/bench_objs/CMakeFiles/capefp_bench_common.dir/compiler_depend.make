# Empty compiler generated dependencies file for capefp_bench_common.
# This may be replaced when dependencies are built.
