file(REMOVE_RECURSE
  "libcapefp_bench_common.a"
)
