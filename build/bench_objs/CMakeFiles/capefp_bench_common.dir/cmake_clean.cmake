file(REMOVE_RECURSE
  "CMakeFiles/capefp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/capefp_bench_common.dir/bench_common.cc.o.d"
  "libcapefp_bench_common.a"
  "libcapefp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capefp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
