# Empty compiler generated dependencies file for bench_micro_pwl.
# This may be replaced when dependencies are built.
