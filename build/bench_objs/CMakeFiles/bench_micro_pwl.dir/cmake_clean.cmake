file(REMOVE_RECURSE
  "../bench/bench_micro_pwl"
  "../bench/bench_micro_pwl.pdb"
  "CMakeFiles/bench_micro_pwl.dir/bench_micro_pwl.cc.o"
  "CMakeFiles/bench_micro_pwl.dir/bench_micro_pwl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pwl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
