# Empty dependencies file for bench_constant_speed.
# This may be replaced when dependencies are built.
