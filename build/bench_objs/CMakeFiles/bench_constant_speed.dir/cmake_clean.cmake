file(REMOVE_RECURSE
  "../bench/bench_constant_speed"
  "../bench/bench_constant_speed.pdb"
  "CMakeFiles/bench_constant_speed.dir/bench_constant_speed.cc.o"
  "CMakeFiles/bench_constant_speed.dir/bench_constant_speed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constant_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
