file(REMOVE_RECURSE
  "libcapefp.a"
)
