
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/CMakeFiles/capefp.dir/core/analysis.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/analysis.cc.o.d"
  "/root/repo/src/core/boundary_estimator.cc" "src/CMakeFiles/capefp.dir/core/boundary_estimator.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/boundary_estimator.cc.o.d"
  "/root/repo/src/core/constant_speed_solver.cc" "src/CMakeFiles/capefp.dir/core/constant_speed_solver.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/constant_speed_solver.cc.o.d"
  "/root/repo/src/core/discrete_solver.cc" "src/CMakeFiles/capefp.dir/core/discrete_solver.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/discrete_solver.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/capefp.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/engine.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/CMakeFiles/capefp.dir/core/estimator.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/estimator.cc.o.d"
  "/root/repo/src/core/hierarchical.cc" "src/CMakeFiles/capefp.dir/core/hierarchical.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/hierarchical.cc.o.d"
  "/root/repo/src/core/lower_border.cc" "src/CMakeFiles/capefp.dir/core/lower_border.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/lower_border.cc.o.d"
  "/root/repo/src/core/profile_envelope.cc" "src/CMakeFiles/capefp.dir/core/profile_envelope.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/profile_envelope.cc.o.d"
  "/root/repo/src/core/profile_search.cc" "src/CMakeFiles/capefp.dir/core/profile_search.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/profile_search.cc.o.d"
  "/root/repo/src/core/reverse_profile_search.cc" "src/CMakeFiles/capefp.dir/core/reverse_profile_search.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/reverse_profile_search.cc.o.d"
  "/root/repo/src/core/td_astar.cc" "src/CMakeFiles/capefp.dir/core/td_astar.cc.o" "gcc" "src/CMakeFiles/capefp.dir/core/td_astar.cc.o.d"
  "/root/repo/src/gen/random_network.cc" "src/CMakeFiles/capefp.dir/gen/random_network.cc.o" "gcc" "src/CMakeFiles/capefp.dir/gen/random_network.cc.o.d"
  "/root/repo/src/gen/suffolk_generator.cc" "src/CMakeFiles/capefp.dir/gen/suffolk_generator.cc.o" "gcc" "src/CMakeFiles/capefp.dir/gen/suffolk_generator.cc.o.d"
  "/root/repo/src/gen/table1_schema.cc" "src/CMakeFiles/capefp.dir/gen/table1_schema.cc.o" "gcc" "src/CMakeFiles/capefp.dir/gen/table1_schema.cc.o.d"
  "/root/repo/src/geo/hilbert.cc" "src/CMakeFiles/capefp.dir/geo/hilbert.cc.o" "gcc" "src/CMakeFiles/capefp.dir/geo/hilbert.cc.o.d"
  "/root/repo/src/geo/point.cc" "src/CMakeFiles/capefp.dir/geo/point.cc.o" "gcc" "src/CMakeFiles/capefp.dir/geo/point.cc.o.d"
  "/root/repo/src/network/accessor.cc" "src/CMakeFiles/capefp.dir/network/accessor.cc.o" "gcc" "src/CMakeFiles/capefp.dir/network/accessor.cc.o.d"
  "/root/repo/src/network/network_io.cc" "src/CMakeFiles/capefp.dir/network/network_io.cc.o" "gcc" "src/CMakeFiles/capefp.dir/network/network_io.cc.o.d"
  "/root/repo/src/network/road_network.cc" "src/CMakeFiles/capefp.dir/network/road_network.cc.o" "gcc" "src/CMakeFiles/capefp.dir/network/road_network.cc.o.d"
  "/root/repo/src/storage/bplus_tree.cc" "src/CMakeFiles/capefp.dir/storage/bplus_tree.cc.o" "gcc" "src/CMakeFiles/capefp.dir/storage/bplus_tree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/capefp.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/capefp.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/ccam_accessor.cc" "src/CMakeFiles/capefp.dir/storage/ccam_accessor.cc.o" "gcc" "src/CMakeFiles/capefp.dir/storage/ccam_accessor.cc.o.d"
  "/root/repo/src/storage/ccam_builder.cc" "src/CMakeFiles/capefp.dir/storage/ccam_builder.cc.o" "gcc" "src/CMakeFiles/capefp.dir/storage/ccam_builder.cc.o.d"
  "/root/repo/src/storage/ccam_store.cc" "src/CMakeFiles/capefp.dir/storage/ccam_store.cc.o" "gcc" "src/CMakeFiles/capefp.dir/storage/ccam_store.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/capefp.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/capefp.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/capefp.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/capefp.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/tdf/pwl_function.cc" "src/CMakeFiles/capefp.dir/tdf/pwl_function.cc.o" "gcc" "src/CMakeFiles/capefp.dir/tdf/pwl_function.cc.o.d"
  "/root/repo/src/tdf/speed_pattern.cc" "src/CMakeFiles/capefp.dir/tdf/speed_pattern.cc.o" "gcc" "src/CMakeFiles/capefp.dir/tdf/speed_pattern.cc.o.d"
  "/root/repo/src/tdf/travel_time.cc" "src/CMakeFiles/capefp.dir/tdf/travel_time.cc.o" "gcc" "src/CMakeFiles/capefp.dir/tdf/travel_time.cc.o.d"
  "/root/repo/src/util/crc32.cc" "src/CMakeFiles/capefp.dir/util/crc32.cc.o" "gcc" "src/CMakeFiles/capefp.dir/util/crc32.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/capefp.dir/util/random.cc.o" "gcc" "src/CMakeFiles/capefp.dir/util/random.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/capefp.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/capefp.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/capefp.dir/util/status.cc.o" "gcc" "src/CMakeFiles/capefp.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
