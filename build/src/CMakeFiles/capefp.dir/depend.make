# Empty dependencies file for capefp.
# This may be replaced when dependencies are built.
