file(REMOVE_RECURSE
  "CMakeFiles/departure_planner.dir/departure_planner.cpp.o"
  "CMakeFiles/departure_planner.dir/departure_planner.cpp.o.d"
  "departure_planner"
  "departure_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/departure_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
