# Empty compiler generated dependencies file for departure_planner.
# This may be replaced when dependencies are built.
