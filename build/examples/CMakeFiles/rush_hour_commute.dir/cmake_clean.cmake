file(REMOVE_RECURSE
  "CMakeFiles/rush_hour_commute.dir/rush_hour_commute.cpp.o"
  "CMakeFiles/rush_hour_commute.dir/rush_hour_commute.cpp.o.d"
  "rush_hour_commute"
  "rush_hour_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_hour_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
