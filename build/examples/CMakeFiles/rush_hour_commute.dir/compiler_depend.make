# Empty compiler generated dependencies file for rush_hour_commute.
# This may be replaced when dependencies are built.
