# Empty compiler generated dependencies file for network_inspect.
# This may be replaced when dependencies are built.
