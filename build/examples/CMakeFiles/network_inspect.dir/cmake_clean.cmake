file(REMOVE_RECURSE
  "CMakeFiles/network_inspect.dir/network_inspect.cpp.o"
  "CMakeFiles/network_inspect.dir/network_inspect.cpp.o.d"
  "network_inspect"
  "network_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
